package resizecache

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"resizecache/internal/runner"
	"resizecache/internal/sim"
)

func TestGridExpansionDeterministicAndDeduped(t *testing.T) {
	g := Grid{
		// Duplicate axis values and a legacy-boolean equivalent must
		// collapse; expansion order must be stable across calls.
		Benchmarks:    []string{"gcc", "m88ksim", "gcc"},
		Organizations: []Organization{SelectiveSets},
		Assocs:        []int{2, 4, 2},
		Sides:         []Sides{DOnly, IOnly, DOnly},
		Instructions:  100_000,
	}
	p1, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1.Scenarios(), p2.Scenarios()) {
		t.Error("expansion is not deterministic")
	}
	// 2 benchmarks × 1 org × 1 strategy × 2 assocs × 2 sides.
	if p1.Len() != 8 {
		t.Errorf("plan has %d scenarios, want 8 (duplicates kept?)", p1.Len())
	}
	// Nested-loop order: benchmarks outermost, so every gcc cell precedes
	// every m88ksim cell.
	scs := p1.Scenarios()
	for i, sc := range scs {
		if sc.Benchmark == "m88ksim" && i < 4 {
			t.Errorf("expansion order broken: m88ksim at position %d", i)
		}
		if sc.ResizeDCache || sc.ResizeICache {
			t.Error("plan scenarios not normalized")
		}
	}
}

func TestGridDefaultsAndValidation(t *testing.T) {
	p, err := Grid{Benchmarks: []string{"gcc"}}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Defaults: three orgs × static × assoc 2 × BothSides × OoO.
	if p.Len() != 3 {
		t.Errorf("default grid for one benchmark has %d scenarios, want 3", p.Len())
	}
	for _, sc := range p.Scenarios() {
		if sc.Assoc != 2 || sc.Sides != BothSides || sc.InOrder || sc.Strategy != Static {
			t.Errorf("defaults not applied: %+v", sc)
		}
		if sc.Instructions == 0 {
			t.Error("instructions not defaulted")
		}
	}
	if _, err := (Grid{Benchmarks: []string{"nosuch"}}).Expand(); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := (Grid{Benchmarks: []string{"gcc"}, Assocs: []int{3}}).Expand(); err == nil {
		t.Error("unsupported associativity accepted")
	}
	if _, err := (Grid{Benchmarks: []string{"gcc"}, Engines: []Engine{Engine(9)}}).Expand(); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestPlanOfNormalizesLegacyBooleans(t *testing.T) {
	legacy := Scenario{Benchmark: "gcc", Organization: SelectiveSets, ResizeDCache: true}
	modern := Scenario{Benchmark: "gcc", Organization: SelectiveSets, Sides: DOnly}
	p, err := PlanOf(legacy, modern)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 1 {
		t.Fatalf("legacy and Sides spellings did not dedup: %d scenarios", p.Len())
	}
	if sc := p.Scenarios()[0]; sc.Sides != DOnly || sc.ResizeDCache {
		t.Errorf("normalization broken: %+v", sc)
	}
	if _, err := PlanOf(Scenario{Benchmark: "gcc"}); err == nil {
		t.Error("invalid scenario accepted into a plan")
	}
}

// stubbedSession builds a Session whose runner uses runSim instead of
// real simulations, with a pool wide enough that blocked stubs cannot
// starve other scenarios' work.
func stubbedSession(runSim func(sim.Config) (sim.Result, error)) *Session {
	return &Session{r: runner.New(runner.Options{Workers: 64, RunSim: runSim})}
}

// stubResult fabricates a plausible simulation result: positive EDP so
// winner selection and reduction math stay finite.
func stubResult(cfg sim.Config) sim.Result {
	var r sim.Result
	r.CPU.Instructions = cfg.Instructions
	r.CPU.Cycles = 2 * cfg.Instructions
	r.EDP.EnergyJ = 1e-3
	r.EDP.Cycles = r.CPU.Cycles
	return r
}

func planOf(t *testing.T, apps ...string) Plan {
	t.Helper()
	var scs []Scenario
	for _, app := range apps {
		scs = append(scs, Scenario{
			Benchmark:    app,
			Organization: SelectiveSets,
			Sides:        DOnly,
			Instructions: 100_000,
		})
	}
	p, err := PlanOf(scs...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunIsolatesPerScenarioErrors(t *testing.T) {
	boom := errors.New("boom")
	s := stubbedSession(func(cfg sim.Config) (sim.Result, error) {
		if cfg.Benchmark == "vpr" {
			return sim.Result{}, boom
		}
		return stubResult(cfg), nil
	})
	plan := planOf(t, "m88ksim", "vpr", "gcc")
	results, err := Collect(s.Run(context.Background(), plan))
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	// Collect surfaces the first failing scenario but still returns the
	// full result set.
	if err == nil || !strings.Contains(err.Error(), "vpr") {
		t.Errorf("Collect error = %v, want the vpr failure", err)
	}
	for _, r := range results {
		switch r.Scenario.Benchmark {
		case "vpr":
			if !errors.Is(r.Err, boom) {
				t.Errorf("vpr result error = %v, want boom", r.Err)
			}
		default:
			if r.Err != nil {
				t.Errorf("%s poisoned by vpr's failure: %v", r.Scenario.Benchmark, r.Err)
			}
		}
	}
	// Results come back in plan order from Collect.
	for i, r := range results {
		if r.Index != i {
			t.Errorf("result %d has index %d", i, r.Index)
		}
	}
}

func TestRunStreamsUnderCancellationMidPlan(t *testing.T) {
	gate := make(chan struct{})
	s := stubbedSession(func(cfg sim.Config) (sim.Result, error) {
		if cfg.Benchmark != "m88ksim" {
			<-gate // block every other benchmark until released
		}
		return stubResult(cfg), nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	plan := planOf(t, "m88ksim", "gcc", "vpr")
	stream := s.Run(ctx, plan, OnResult(func(r Result, completed, total int) {
		if total != 3 {
			t.Errorf("OnResult total = %d, want 3", total)
		}
		if r.Scenario.Benchmark == "m88ksim" && r.Err == nil {
			cancel() // first completion cancels the rest of the plan
		}
	}))
	// Every scenario's result streams out even though the gcc/vpr
	// stragglers are still blocked inside their simulations...
	var results []Result
	for i := 0; i < 3; i++ {
		results = append(results, <-stream)
	}
	// ...but the stream only closes once those stragglers have drained.
	close(gate)
	if _, open := <-stream; open {
		t.Fatal("stream delivered more than one result per scenario")
	}
	for _, r := range results {
		if r.Scenario.Benchmark == "m88ksim" {
			if r.Err != nil {
				t.Errorf("m88ksim completed before the cancel but reports %v", r.Err)
			}
			continue
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("%s: error = %v, want context.Canceled", r.Scenario.Benchmark, r.Err)
		}
	}
}

func TestOnResultReportsCompletedOfTotal(t *testing.T) {
	s := stubbedSession(func(cfg sim.Config) (sim.Result, error) {
		return stubResult(cfg), nil
	})
	plan := planOf(t, "m88ksim", "gcc")
	var seen []int
	results, err := Collect(s.Run(context.Background(), plan,
		OnResult(func(_ Result, completed, total int) {
			if total != 2 {
				t.Errorf("total = %d, want 2", total)
			}
			seen = append(seen, completed)
		})))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	if !reflect.DeepEqual(seen, []int{1, 2}) {
		t.Errorf("completed sequence = %v, want [1 2]", seen)
	}
}

// TestPlanRunsAsOneBatchedPass is the acceptance check for batch
// scheduling: a multi-scenario plan submits its profiling sweeps through
// one batched enqueue pass and gathers with zero fan-out barriers, where
// the same scenarios run sequentially through Simulate pay one enqueue
// pass per sweep (each sweep pre-enqueues its own candidates, so even
// the solo path gangs and gathers barrier-free); and a warm plan re-run
// neither enqueues nor simulates.
func TestPlanRunsAsOneBatchedPass(t *testing.T) {
	scenarios := []Scenario{
		{Benchmark: "m88ksim", Organization: SelectiveSets, Sides: DOnly, Instructions: 60_000},
		{Benchmark: "gcc", Organization: SelectiveSets, Sides: DOnly, Instructions: 60_000},
	}
	plan, err := PlanOf(scenarios...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	batch := NewSession()
	if _, err := Collect(batch.Run(ctx, plan)); err != nil {
		t.Fatal(err)
	}
	bst := batch.Stats()
	if bst.EnqueueBatches != 1 {
		t.Errorf("plan used %d enqueue passes, want 1", bst.EnqueueBatches)
	}
	if bst.Enqueued == 0 || bst.Enqueued != bst.Runs {
		t.Errorf("enqueued %d configs but ran %d — sweeps not batch-scheduled", bst.Enqueued, bst.Runs)
	}
	if bst.Barriers != 0 {
		t.Errorf("plan gathers fanned out %d barriers, want 0", bst.Barriers)
	}

	// The same scenarios sequentially: one enqueue pass per sweep, and —
	// because each sweep pre-enqueues its candidates — zero gather-time
	// barriers and ganged execution even on the solo path.
	seq := NewSession()
	for _, sc := range scenarios {
		if _, err := seq.Simulate(sc); err != nil {
			t.Fatal(err)
		}
	}
	sst := seq.Stats()
	if sst.Runs != bst.Runs {
		t.Fatalf("paths ran different work: %d vs %d sims", sst.Runs, bst.Runs)
	}
	if sst.EnqueueBatches != uint64(len(scenarios)) {
		t.Errorf("sequential path used %d enqueue passes, want %d (one per sweep)",
			sst.EnqueueBatches, len(scenarios))
	}
	if sst.Barriers != 0 {
		t.Errorf("sequential sweeps hit %d gather barriers, want 0 (candidates pre-enqueue)",
			sst.Barriers)
	}
	if sst.Ganged == 0 {
		t.Errorf("sequential sweeps coalesced no gangs: %+v", sst)
	}

	// Warm-cache behaviour is preserved: a repeated plan resolves at the
	// artifact tier — nothing enqueued, nothing simulated.
	if _, err := Collect(batch.Run(ctx, plan)); err != nil {
		t.Fatal(err)
	}
	warm := batch.Stats()
	if warm.Runs != bst.Runs || warm.Enqueued != bst.Enqueued || warm.EnqueueBatches != bst.EnqueueBatches {
		t.Errorf("warm plan did fresh work: %+v -> %+v", bst, warm)
	}
	if warm.ArtifactHits <= bst.ArtifactHits {
		t.Errorf("warm plan scored no sweep-level reuse: %+v", warm)
	}
}

// TestPlanOutcomesMatchSimulate guards the redesign end to end: the
// batch path must produce byte-identical outcomes (modulo the per-call
// Stats window) to the classic one-scenario-at-a-time facade.
func TestPlanOutcomesMatchSimulate(t *testing.T) {
	scenarios := []Scenario{
		{Benchmark: "m88ksim", Organization: SelectiveSets, Sides: DOnly, Instructions: 60_000},
		{Benchmark: "m88ksim", Organization: SelectiveWays, Sides: IOnly, Instructions: 60_000},
	}
	plan, err := PlanOf(scenarios...)
	if err != nil {
		t.Fatal(err)
	}
	results, err := Collect(NewSession().Run(context.Background(), plan))
	if err != nil {
		t.Fatal(err)
	}
	seq := NewSession()
	for i, sc := range scenarios {
		want, err := seq.Simulate(sc)
		if err != nil {
			t.Fatal(err)
		}
		got := results[i].Outcome
		got.Stats, want.Stats = runner.Stats{}, runner.Stats{}
		if got != want {
			t.Errorf("scenario %d diverged:\nplan:     %+v\nsimulate: %+v", i, got, want)
		}
	}
}

func TestRunEmptyPlanClosesImmediately(t *testing.T) {
	results, err := Collect(NewSession().Run(context.Background(), Plan{}))
	if err != nil || len(results) != 0 {
		t.Fatalf("empty plan: %v results, err %v", results, err)
	}
}

func TestSidesAndEngineStrings(t *testing.T) {
	if DOnly.String() != "d-cache" || IOnly.String() != "i-cache" || BothSides.String() != "d+i-caches" {
		t.Error("Sides strings wrong")
	}
	if OutOfOrderEngine.String() != "out-of-order" || InOrderEngine.String() != "in-order" {
		t.Error("Engine strings wrong")
	}
}

func TestGridHierarchyAndL2Axes(t *testing.T) {
	// Sides × L2Orgs crossing: the L2Only×NonResizable contradiction is
	// skipped, the rest expand.
	plan, err := Grid{
		Benchmarks:    []string{"gcc"},
		Organizations: []Organization{SelectiveSets},
		Sides:         []Sides{DOnly, L2Only},
		L2Orgs:        []Organization{NonResizable, SelectiveWays},
		Instructions:  100_000,
	}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// (DOnly, fixed L2), (DOnly, ways L2), (L2Only, ways L2).
	if plan.Len() != 3 {
		t.Fatalf("plan has %d scenarios, want 3: %+v", plan.Len(), plan.Scenarios())
	}
	var l2only, dWithL2 int
	for _, sc := range plan.Scenarios() {
		if sc.Sides == L2Only {
			l2only++
		}
		if sc.Sides == DOnly && sc.L2.Organization == SelectiveWays {
			dWithL2++
		}
	}
	if l2only != 1 || dWithL2 != 1 {
		t.Errorf("unexpected cells: %+v", plan.Scenarios())
	}

	// The Hierarchies axis expands like any other dimension.
	plan, err = Grid{
		Benchmarks:    []string{"gcc"},
		Organizations: []Organization{SelectiveSets},
		Sides:         []Sides{DOnly},
		Hierarchies:   []Hierarchy{BaseL2, NoL2, DeepL2L3},
		Instructions:  100_000,
	}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() != 3 {
		t.Fatalf("hierarchy axis expanded to %d scenarios, want 3", plan.Len())
	}

	// A resizable L2 crossed with a Hierarchies axis that includes NoL2:
	// the NoL2×resizable-L2 cells are contradictions and are skipped,
	// not fatal — the remaining hierarchy cells expand.
	plan, err = Grid{
		Benchmarks:  []string{"gcc"},
		Sides:       []Sides{L2Only},
		L2Orgs:      []Organization{SelectiveWays},
		Hierarchies: []Hierarchy{BaseL2, NoL2, BigL2},
	}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() != 2 {
		t.Fatalf("NoL2 contradiction not skipped: %d scenarios, want 2", plan.Len())
	}
	for _, sc := range plan.Scenarios() {
		if sc.Hierarchy == NoL2 {
			t.Errorf("NoL2 cell survived with a resizable L2: %+v", sc)
		}
	}

	// An all-contradiction grid errors instead of silently emptying.
	if _, err := (Grid{
		Benchmarks:    []string{"gcc"},
		Organizations: []Organization{SelectiveSets},
		Sides:         []Sides{L2Only},
	}).Expand(); err == nil {
		t.Error("grid of only L2Only×NonResizable cells accepted")
	}

	// Equivalent spellings of an L2-only sweep deduplicate.
	plan, err = PlanOf(
		Scenario{Benchmark: "gcc", Sides: L2Only, L2: L2Spec{Organization: Hybrid}},
		Scenario{Benchmark: "gcc", L2: L2Spec{Organization: Hybrid}},
		Scenario{Benchmark: "gcc", Organization: SelectiveSets, Sides: L2Only,
			L2: L2Spec{Organization: Hybrid, Assoc: 4}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() != 1 {
		t.Fatalf("L2-only spellings did not deduplicate: %+v", plan.Scenarios())
	}
}

// TestL2GridWarmRerun is the hierarchy-as-data acceptance path: a grid
// over the L2Orgs axis with a dynamic L2 strategy expands, runs through
// Session.Run, and memoizes under the hierarchy-aware (keyVersion 2)
// fingerprints — a warm rerun resolves entirely from cache, enqueueing
// and simulating nothing.
func TestL2GridWarmRerun(t *testing.T) {
	grid := Grid{
		Benchmarks:    []string{"m88ksim"},
		Organizations: []Organization{SelectiveSets},
		Sides:         []Sides{L2Only},
		L2Orgs:        []Organization{SelectiveWays},
		L2Strategies:  []Strategy{Dynamic},
		Instructions:  60_000,
	}
	plan, err := grid.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() != 1 {
		t.Fatalf("plan has %d scenarios, want 1", plan.Len())
	}
	s := NewSession()
	results, err := Collect(s.Run(context.Background(), plan))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Outcome.L2Chosen == "" {
		t.Fatalf("no L2 winner: %+v", results[0].Outcome)
	}
	cold := s.Stats()
	if cold.Runs == 0 || cold.Enqueued == 0 {
		t.Fatalf("cold plan did no work: %+v", cold)
	}

	again, err := Collect(s.Run(context.Background(), plan))
	if err != nil {
		t.Fatal(err)
	}
	warm := s.Stats()
	if warm.Runs != cold.Runs || warm.Enqueued != cold.Enqueued || warm.Submitted != cold.Submitted {
		t.Errorf("warm rerun did fresh work: %+v -> %+v", cold, warm)
	}
	a, b := results[0].Outcome, again[0].Outcome
	a.Stats, b.Stats = runner.Stats{}, runner.Stats{} // per-call deltas differ
	if a != b {
		t.Errorf("warm outcome differs: %+v vs %+v", a, b)
	}
}

// TestGridSkipsL1OrgContradictions: a NonResizable L1 organization
// crossed with L1-resizing Sides is skipped, not fatal.
func TestGridSkipsL1OrgContradictions(t *testing.T) {
	plan, err := Grid{
		Benchmarks:    []string{"gcc"},
		Organizations: []Organization{NonResizable, SelectiveSets},
		Sides:         []Sides{DOnly},
		L2Orgs:        []Organization{SelectiveWays},
		Instructions:  100_000,
	}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Only the SelectiveSets cell survives (DOnly + resizable L2).
	if plan.Len() != 1 {
		t.Fatalf("plan has %d scenarios, want 1: %+v", plan.Len(), plan.Scenarios())
	}
	if sc := plan.Scenarios()[0]; sc.Organization != SelectiveSets || sc.Sides != DOnly {
		t.Errorf("wrong surviving cell: %+v", sc)
	}
	// NonResizable × BothSides × resizable L2 folds to L2Only and stays.
	plan, err = Grid{
		Benchmarks:    []string{"gcc"},
		Organizations: []Organization{NonResizable},
		L2Orgs:        []Organization{SelectiveWays},
	}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() != 1 || plan.Scenarios()[0].Sides != L2Only {
		t.Fatalf("BothSides+L2 fold missing: %+v", plan.Scenarios())
	}
	// NonResizable × BothSides × fixed L2 is a contradiction: all cells
	// skipped -> error.
	if _, err := (Grid{
		Benchmarks:    []string{"gcc"},
		Organizations: []Organization{NonResizable},
	}).Expand(); err == nil {
		t.Error("all-contradiction grid accepted")
	}
}

// TestGridPlanUsesGangs: the acceptance check for one-pass sweeps — an
// unchanged Grid plan transparently coalesces its same-benchmark
// profiling simulations into gangs, visible only through the Ganged
// counters (the facade API is untouched).
func TestGridPlanUsesGangs(t *testing.T) {
	plan, err := Grid{
		Benchmarks:    []string{"m88ksim"},
		Organizations: []Organization{SelectiveSets, SelectiveWays},
		Sides:         []Sides{DOnly},
		Instructions:  60_000,
	}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession()
	if _, err := Collect(s.Run(context.Background(), plan)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Ganged == 0 || st.GangBatches == 0 {
		t.Errorf("grid plan did not gang: %+v", st)
	}
	if st.Ganged > st.Runs {
		t.Errorf("ganged %d exceeds runs %d", st.Ganged, st.Runs)
	}

	// GangSize 1 opts a session out; the same plan then runs solo only.
	off, err := NewSessionWith(SessionOptions{GangSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(off.Run(context.Background(), plan)); err != nil {
		t.Fatal(err)
	}
	if st := off.Stats(); st.Ganged != 0 {
		t.Errorf("GangSize=1 session still ganged: %+v", st)
	}
}
