package resizecache

import "testing"

func TestBenchmarksList(t *testing.T) {
	b := Benchmarks()
	if len(b) != 12 {
		t.Fatalf("Benchmarks() = %v", b)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(Scenario{}); err == nil {
		t.Fatal("empty scenario accepted")
	}
	if _, err := Simulate(Scenario{Benchmark: "gcc"}); err == nil {
		t.Fatal("non-resizable organization accepted")
	}
	if _, err := Simulate(Scenario{Benchmark: "nosuch", Organization: SelectiveSets}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestStrategyString(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" {
		t.Fatal("strategy strings wrong")
	}
}

func TestSimulateSingleCache(t *testing.T) {
	out, err := Simulate(Scenario{
		Benchmark:    "m88ksim",
		Organization: SelectiveSets,
		ResizeDCache: true,
		Instructions: 300_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.DCacheSizeReductionPct <= 0 {
		t.Errorf("m88ksim d-cache did not shrink: %+v", out)
	}
	if out.ICacheSizeReductionPct != 0 || out.IChosen != "" {
		t.Errorf("i-cache should be untouched: %+v", out)
	}
	if out.EDPReductionPct <= 0 {
		t.Errorf("no EDP gain: %+v", out)
	}
}

func TestSimulateBothCachesDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("combined sweep in -short mode")
	}
	out, err := Simulate(Scenario{
		Benchmark:    "ammp",
		Organization: SelectiveSets,
		Instructions: 300_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.DChosen == "" || out.IChosen == "" {
		t.Fatalf("both caches should be profiled: %+v", out)
	}
	if out.EDPReductionPct <= 0 {
		t.Errorf("combined resizing should gain EDP: %+v", out)
	}
}
