package resizecache

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"resizecache/internal/runner"
)

func TestBenchmarksList(t *testing.T) {
	b := Benchmarks()
	if len(b) != 12 {
		t.Fatalf("Benchmarks() = %v", b)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(Scenario{}); err == nil {
		t.Fatal("empty scenario accepted")
	}
	if _, err := Simulate(Scenario{Benchmark: "gcc"}); err == nil {
		t.Fatal("non-resizable organization accepted")
	}
	err := func() error {
		_, err := Simulate(Scenario{Benchmark: "nosuch", Organization: SelectiveSets})
		return err
	}()
	if err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	// The error must identify the bad name and the valid set up front,
	// not surface from deep inside the workload layer.
	if !strings.Contains(err.Error(), `"nosuch"`) || !strings.Contains(err.Error(), "gcc") {
		t.Errorf("unhelpful unknown-benchmark error: %v", err)
	}
}

func TestSimulateRejectsUnsupportedAssoc(t *testing.T) {
	// Associativities the geometry layer cannot build must fail fast with
	// a clear error instead of profiling a degenerate config.
	for _, assoc := range []int{-1, 3, 5, 64} {
		_, err := Simulate(Scenario{Benchmark: "gcc", Organization: SelectiveSets, Assoc: assoc})
		if err == nil {
			t.Errorf("assoc %d accepted", assoc)
			continue
		}
		if !strings.Contains(err.Error(), "associativity") {
			t.Errorf("assoc %d: unhelpful error: %v", assoc, err)
		}
	}
	// Powers of two the geometry supports still normalize fine.
	for _, assoc := range []int{1, 2, 16, 32} {
		sc := Scenario{Benchmark: "gcc", Organization: SelectiveSets, Assoc: assoc}
		if _, err := sc.normalize(); err != nil {
			t.Errorf("assoc %d rejected: %v", assoc, err)
		}
	}
}

func TestSidesNormalization(t *testing.T) {
	base := Scenario{Benchmark: "gcc", Organization: SelectiveSets}
	cases := []struct {
		name string
		sc   Scenario
		want Sides
	}{
		{"default", base, BothSides},
		{"legacy d", func() Scenario { s := base; s.ResizeDCache = true; return s }(), DOnly},
		{"legacy i", func() Scenario { s := base; s.ResizeICache = true; return s }(), IOnly},
		{"legacy both", func() Scenario { s := base; s.ResizeDCache, s.ResizeICache = true, true; return s }(), BothSides},
		{"explicit d", func() Scenario { s := base; s.Sides = DOnly; return s }(), DOnly},
		{"explicit i", func() Scenario { s := base; s.Sides = IOnly; return s }(), IOnly},
		{"explicit d + redundant bool", func() Scenario { s := base; s.Sides = DOnly; s.ResizeDCache = true; return s }(), DOnly},
	}
	for _, c := range cases {
		n, err := c.sc.normalize()
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if n.Sides != c.want {
			t.Errorf("%s: normalized to %v, want %v", c.name, n.Sides, c.want)
		}
		if n.ResizeDCache || n.ResizeICache {
			t.Errorf("%s: deprecated booleans survived normalization", c.name)
		}
	}
	// Contradictions between Sides and the deprecated booleans are errors.
	bad := base
	bad.Sides, bad.ResizeICache = DOnly, true
	if _, err := bad.normalize(); err == nil {
		t.Error("Sides=DOnly with ResizeICache accepted")
	}
	bad = base
	bad.Sides, bad.ResizeDCache = IOnly, true
	if _, err := bad.normalize(); err == nil {
		t.Error("Sides=IOnly with ResizeDCache accepted")
	}
}

func TestSimulateContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SimulateContext(ctx, Scenario{
		Benchmark:    "m88ksim",
		Organization: SelectiveSets,
		ResizeDCache: true,
		Instructions: 300_000,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestSessionSharesMemoizedResults(t *testing.T) {
	s := NewSession()
	sc := Scenario{
		Benchmark:    "m88ksim",
		Organization: SelectiveSets,
		ResizeDCache: true,
		Instructions: 200_000,
	}
	first, err := s.Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}
	cold := s.Stats()
	second, err := s.Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}
	warm := s.Stats()
	if warm.Runs != cold.Runs {
		t.Errorf("repeated scenario re-simulated: %d -> %d runs", cold.Runs, warm.Runs)
	}
	// The repeat resolves at the sweep level (whole-profiling-sweep
	// artifact hits) without even reaching the per-config memo table.
	if warm.ArtifactHits <= cold.ArtifactHits {
		t.Errorf("repeated scenario scored no sweep-level reuse: %+v", warm)
	}
	if warm.Submitted != cold.Submitted {
		t.Errorf("repeated scenario reached the per-config layer: %+v", warm)
	}
	// Outcome.Stats are per-call deltas, so the warm call reports its own
	// (hit-only) activity; the scenario outcome itself must not change.
	first.Stats, second.Stats = runner.Stats{}, runner.Stats{}
	if first != second {
		t.Errorf("memoized outcome changed: %+v vs %+v", first, second)
	}
}

func TestOutcomeStatsArePerCallDeltas(t *testing.T) {
	s := NewSession()
	sc := Scenario{
		Benchmark:    "m88ksim",
		Organization: SelectiveSets,
		Sides:        DOnly,
		Instructions: 200_000,
	}
	cold, err := s.Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.Runs == 0 || cold.Stats.ArtifactComputes == 0 {
		t.Errorf("cold outcome reports no work: %+v", cold.Stats)
	}
	warm, err := s.Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Stats are per-call deltas: the warm repeat did no simulation work
	// of its own — it resolved at the sweep-artifact tier — and must say
	// so, instead of echoing the session's cumulative counters.
	if warm.Stats.Runs != 0 || warm.Stats.Submitted != 0 {
		t.Errorf("warm outcome claims fresh work: %+v", warm.Stats)
	}
	if warm.Stats.ArtifactHits == 0 {
		t.Errorf("warm outcome reports no sweep-level reuse: %+v", warm.Stats)
	}
	if warm.Stats.ArtifactComputes != 0 {
		t.Errorf("warm outcome claims artifact computes: %+v", warm.Stats)
	}
	// The session-level view stays cumulative.
	if st := s.Stats(); st.Runs != cold.Stats.Runs || st.ArtifactHits == 0 {
		t.Errorf("session stats lost history: %+v", st)
	}
}

func TestSessionPersistsAcrossProcessesViaStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "session.json")
	sc := Scenario{
		Benchmark:    "m88ksim",
		Organization: SelectiveSets,
		ResizeDCache: true,
		Instructions: 200_000,
	}
	s1, err := NewSessionWith(SessionOptions{StorePath: path})
	if err != nil {
		t.Fatal(err)
	}
	first, err := s1.Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Flush(); err != nil {
		t.Fatal(err)
	}

	// A fresh session on the same store (a new process, in real use)
	// resolves the whole profiling sweep without simulating.
	s2, err := NewSessionWith(SessionOptions{StorePath: path})
	if err != nil {
		t.Fatal(err)
	}
	second, err := s2.Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.Runs != 0 {
		t.Errorf("resumed session simulated %d configs, want 0", second.Stats.Runs)
	}
	if second.Stats.ArtifactStoreHits == 0 {
		t.Errorf("resumed session scored no artifact store hits: %+v", second.Stats)
	}
	first.Stats, second.Stats = runner.Stats{}, runner.Stats{}
	if first != second {
		t.Errorf("resumed outcome differs: %+v vs %+v", first, second)
	}
}

func TestStrategyString(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" {
		t.Fatal("strategy strings wrong")
	}
}

func TestSimulateSingleCache(t *testing.T) {
	out, err := Simulate(Scenario{
		Benchmark:    "m88ksim",
		Organization: SelectiveSets,
		ResizeDCache: true,
		Instructions: 300_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.DCacheSizeReductionPct <= 0 {
		t.Errorf("m88ksim d-cache did not shrink: %+v", out)
	}
	if out.ICacheSizeReductionPct != 0 || out.IChosen != "" {
		t.Errorf("i-cache should be untouched: %+v", out)
	}
	if out.EDPReductionPct <= 0 {
		t.Errorf("no EDP gain: %+v", out)
	}
}

func TestSimulateBothCachesDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("combined sweep in -short mode")
	}
	out, err := Simulate(Scenario{
		Benchmark:    "ammp",
		Organization: SelectiveSets,
		Instructions: 300_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.DChosen == "" || out.IChosen == "" {
		t.Fatalf("both caches should be profiled: %+v", out)
	}
	if out.EDPReductionPct <= 0 {
		t.Errorf("combined resizing should gain EDP: %+v", out)
	}
}

func TestL2ScenarioNormalization(t *testing.T) {
	// L2-only resizing has two spellings that must normalize identically.
	a, err := Scenario{Benchmark: "gcc", Sides: L2Only,
		L2: L2Spec{Organization: SelectiveWays}}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Scenario{Benchmark: "gcc",
		L2: L2Spec{Organization: SelectiveWays}}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("L2-only spellings diverge: %+v vs %+v", a, b)
	}
	if a.Sides != L2Only || a.Organization != NonResizable {
		t.Errorf("canonical L2-only form wrong: %+v", a)
	}
	if a.L2.Assoc != 4 {
		t.Errorf("L2 associativity not defaulted: %+v", a.L2)
	}

	// An explicitly default L2 associativity on a fixed L2 folds away.
	c, err := Scenario{Benchmark: "gcc", Organization: SelectiveSets,
		L2: L2Spec{Assoc: 4}}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	d, err := Scenario{Benchmark: "gcc", Organization: SelectiveSets}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if c != d {
		t.Errorf("default L2 assoc spelled explicitly did not fold: %+v vs %+v", c, d)
	}

	// Invalid combinations fail fast.
	cases := map[string]Scenario{
		"L2Only without resizable L2": {Benchmark: "gcc", Sides: L2Only},
		"nothing to resize":           {Benchmark: "gcc"},
		"L2 resize on NoL2":           {Benchmark: "gcc", Hierarchy: NoL2, L2: L2Spec{Organization: SelectiveSets}},
		"L2 assoc on NoL2":            {Benchmark: "gcc", Organization: SelectiveSets, Hierarchy: NoL2, L2: L2Spec{Assoc: 8}},
		"bad L2 assoc":                {Benchmark: "gcc", Organization: SelectiveSets, L2: L2Spec{Assoc: 3}},
		"unknown hierarchy":           {Benchmark: "gcc", Organization: SelectiveSets, Hierarchy: Hierarchy(99)},
		"L2Only with legacy boolean": {Benchmark: "gcc", Sides: L2Only,
			L2: L2Spec{Organization: SelectiveWays}, ResizeDCache: true},
		// An explicit L1 side with no resizable L1 organization asked for
		// something the scenario cannot do — it must not silently fold to
		// an L2-only experiment.
		"explicit DOnly without L1 org": {Benchmark: "gcc", Sides: DOnly,
			L2: L2Spec{Organization: SelectiveWays}},
		// L2 associativity is judged against the hierarchy's actual L2:
		// 128 ways fit the base 512K L2 but not the 256K SmallL2.
		"assoc too high for SmallL2": {Benchmark: "gcc", Organization: SelectiveSets,
			Hierarchy: SmallL2, L2: L2Spec{Assoc: 128}},
	}
	for name, sc := range cases {
		if _, err := sc.normalize(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// ... while 128 ways on the base 512K L2 (4K ways = one subarray) and
	// on the 1M BigL2 are geometrically sound.
	for _, h := range []Hierarchy{BaseL2, BigL2} {
		sc := Scenario{Benchmark: "gcc", Organization: SelectiveSets,
			Hierarchy: h, L2: L2Spec{Organization: SelectiveWays, Assoc: 128}}
		if _, err := sc.normalize(); err != nil {
			t.Errorf("%v with 128-way L2 rejected: %v", h, err)
		}
	}
}

func TestSimulateL2Only(t *testing.T) {
	out, err := Simulate(Scenario{
		Benchmark:    "m88ksim",
		Sides:        L2Only,
		L2:           L2Spec{Organization: SelectiveWays},
		Instructions: 200_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.L2Chosen == "" {
		t.Fatalf("no L2 configuration chosen: %+v", out)
	}
	if out.DChosen != "" || out.IChosen != "" {
		t.Errorf("L1s should be untouched: %+v", out)
	}
	if out.L2SizeReductionPct <= 0 {
		t.Errorf("m88ksim's L2 should shrink: %+v", out)
	}
	sum := out.Energy.CorePct + out.Energy.L1IPct + out.Energy.L1DPct +
		out.Energy.L2Pct + out.Energy.MemPct
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("energy shares sum to %.2f%%: %+v", sum, out.Energy)
	}
}

func TestSimulateL1PlusL2Combined(t *testing.T) {
	if testing.Short() {
		t.Skip("two profiling sweeps plus a combined run in -short mode")
	}
	out, err := Simulate(Scenario{
		Benchmark:    "m88ksim",
		Organization: SelectiveSets,
		Sides:        DOnly,
		L2:           L2Spec{Organization: SelectiveWays},
		Instructions: 200_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.DChosen == "" || out.L2Chosen == "" {
		t.Fatalf("both caches should be profiled: %+v", out)
	}
	if out.IChosen != "" {
		t.Errorf("i-cache should be untouched: %+v", out)
	}
	if out.DCacheSizeReductionPct <= 0 || out.L2SizeReductionPct <= 0 {
		t.Errorf("both resized caches should shrink on m88ksim: %+v", out)
	}
}

func TestSimulateHierarchies(t *testing.T) {
	if testing.Short() {
		t.Skip("hierarchy sweep in -short mode")
	}
	for _, h := range []Hierarchy{NoL2, SmallL2, DeepL2L3} {
		out, err := Simulate(Scenario{
			Benchmark:    "m88ksim",
			Organization: SelectiveSets,
			Sides:        DOnly,
			Hierarchy:    h,
			Instructions: 150_000,
		})
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if out.DChosen == "" {
			t.Errorf("%v: no d-cache winner: %+v", h, out)
		}
		if h == NoL2 && out.Energy.L2Pct != 0 {
			t.Errorf("NoL2 charged L2 energy: %+v", out.Energy)
		}
		if h != NoL2 && out.Energy.L2Pct <= 0 {
			t.Errorf("%v: no L2 energy share: %+v", h, out.Energy)
		}
	}
}

func TestStrategyRangeCheckedBeforeL2OnlyFold(t *testing.T) {
	// A garbage L1 strategy must error even when the scenario folds to
	// L2Only (where a valid strategy would be canonicalized away).
	bad := Scenario{Benchmark: "gcc", Sides: L2Only, Strategy: Strategy(9),
		L2: L2Spec{Organization: SelectiveWays}}
	if _, err := bad.normalize(); err == nil {
		t.Error("out-of-range strategy accepted on an L2Only scenario")
	}
	// ... while a valid Dynamic still folds to Static for dedup.
	ok := Scenario{Benchmark: "gcc", Sides: L2Only, Strategy: Dynamic,
		L2: L2Spec{Organization: SelectiveWays}}
	n, err := ok.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Strategy != Static {
		t.Errorf("inert L1 strategy not canonicalized: %+v", n)
	}
}

func TestL2StrategyRangeCheckedOnFixedL2(t *testing.T) {
	// A garbage L2 strategy errors even when the L2 is not resizing...
	bad := Scenario{Benchmark: "gcc", Organization: SelectiveSets,
		L2: L2Spec{Strategy: Strategy(9)}}
	if _, err := bad.normalize(); err == nil {
		t.Error("out-of-range L2 strategy accepted on a fixed L2")
	}
	// ...while a valid-but-inert Dynamic folds away for grid dedup.
	ok := Scenario{Benchmark: "gcc", Organization: SelectiveSets,
		L2: L2Spec{Strategy: Dynamic}}
	n, err := ok.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.L2.Strategy != Static {
		t.Errorf("inert L2 strategy not canonicalized: %+v", n.L2)
	}
}
