package resizecache

import (
	"context"
	"strings"
	"testing"

	"resizecache/internal/runner"
)

// storedSession returns a Session backed by an in-memory persistent
// store — the shape under which warmup checkpoints are recorded.
func storedSession(t *testing.T) *Session {
	t.Helper()
	s, err := NewSessionWith(SessionOptions{Store: runner.NewMemStore()})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSimulateSampled: a sampled scenario runs end to end — profiling
// sweeps, baseline, winner selection — and produces a finite outcome,
// with the runner recording warmup-checkpoint traffic for the shared
// front-end.
func TestSimulateSampled(t *testing.T) {
	s := storedSession(t)
	sc := Scenario{
		Benchmark:    "gcc",
		Organization: SelectiveWays,
		Sides:        DOnly,
		Instructions: 150_000,
		Sampling:     DefaultSampling(),
	}
	out, err := s.Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Runs == 0 {
		t.Fatalf("sampled scenario simulated nothing: %+v", out.Stats)
	}
	if out.DChosen == "" {
		t.Error("sampled sweep selected no winner")
	}
	// Every config of the sweep shares the scenario's front-end; the
	// first pass (often one coalesced gang) records the warmup
	// checkpoint, and any pass after it restores instead of re-warming.
	if st := s.Stats(); st.WarmupSaves == 0 {
		t.Errorf("sampled sweep recorded no warmup checkpoint: %+v", st)
	}
}

// TestSampledScenarioMemoizesSeparately: sampled and detailed runs of
// the same experiment have distinct fingerprints — a sampled sweep must
// never satisfy (or be satisfied by) a detailed one.
func TestSampledScenarioMemoizesSeparately(t *testing.T) {
	sc := Scenario{Benchmark: "gcc", Organization: SelectiveWays, Sides: DOnly,
		Instructions: 150_000}
	sampled := sc
	sampled.Sampling = DefaultSampling()

	s := NewSession()
	first, err := s.Simulate(sampled)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.Runs == 0 {
		t.Error("detailed scenario resolved against sampled results")
	}
	_ = first
}

// TestSamplingValidatedAtPlanTime: spec mistakes surface from normalize
// (and therefore PlanOf/Grid.Expand), not from deep inside a sweep.
func TestSamplingValidatedAtPlanTime(t *testing.T) {
	_, err := PlanOf(Scenario{Benchmark: "gcc", Organization: SelectiveWays,
		Sampling: SamplingSpec{DetailedInstructions: 5_000}})
	if err == nil || !strings.Contains(err.Error(), "partial sampling spec") {
		t.Errorf("partial spec: got %v", err)
	}
	_, err = PlanOf(Scenario{Benchmark: "gcc", Organization: SelectiveWays,
		Instructions: 100_000,
		Sampling: SamplingSpec{WarmupInstructions: 100_000,
			DetailedInstructions: 5_000, FastForwardInstructions: 10_000}})
	if err == nil || !strings.Contains(err.Error(), "consumes the whole") {
		t.Errorf("warmup-eats-budget: got %v", err)
	}
}

// TestGridSamplingAppliesToEveryScenario: Grid.Sampling is a scalar
// like Instructions, stamped onto every expanded cell.
func TestGridSamplingAppliesToEveryScenario(t *testing.T) {
	spec := DefaultSampling()
	plan, err := Grid{
		Benchmarks:    []string{"gcc", "vpr"},
		Organizations: []Organization{SelectiveWays, SelectiveSets},
		Instructions:  150_000,
		Sampling:      spec,
	}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() != 4 {
		t.Fatalf("plan has %d scenarios, want 4", plan.Len())
	}
	for _, sc := range plan.Scenarios() {
		if sc.Sampling != spec {
			t.Fatalf("scenario %+v lost the grid's sampling spec", sc)
		}
	}
	// The plan also runs: two same-benchmark scenarios share sweeps and
	// warmup checkpoints through the session runner.
	s := storedSession(t)
	if _, err := Collect(s.Run(context.Background(), plan)); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.WarmupSaves == 0 {
		t.Errorf("sampled plan recorded no warmup checkpoints: %+v", st)
	}
}
