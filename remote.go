package resizecache

// The remote execution surface: Dial connects to a long-lived simd
// daemon (cmd/simd, internal/simd) and returns a RemoteSession that
// satisfies the same Executor surface as an in-process Session. Plans
// serialize to the daemon, which partitions them across its worker
// shards through the shared runner — so gang coalescing, in-flight
// dedup, and memoization work across every connected client — and
// streams per-scenario results back with the same error-isolation and
// completed-of-total progress semantics Session.Run gives locally.

import (
	"context"
	"encoding/json"
	"fmt"

	"resizecache/internal/runner"
	simdclient "resizecache/internal/simd/client"
	"resizecache/internal/simd/wire"
)

// RemoteError is a failure reported by the daemon — either a scenario's
// isolated simulation error replayed over the wire, or a request-level
// rejection.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "resizecache: remote: " + e.Msg }

// RemoteSession executes scenarios on a simd daemon. It is an Executor:
// Run, Simulate, and Artifact behave like Session's, except that
// simulations run in the daemon's worker pool and memoize against every
// other client's work. Safe for concurrent use; one connection
// multiplexes concurrent plans. Close when done.
type RemoteSession struct {
	conn *simdclient.Conn
}

var _ Executor = (*RemoteSession)(nil)

// Dial connects to a simd daemon. Address forms: "unix:<path>",
// "tcp:<host:port>", a bare path containing a path separator (unix), or
// a bare host:port (tcp).
func Dial(addr string) (*RemoteSession, error) {
	conn, err := simdclient.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("resizecache: dial %s: %w", addr, err)
	}
	return &RemoteSession{conn: conn}, nil
}

// Close tears down the daemon connection; in-flight plans terminate
// with transport errors.
func (s *RemoteSession) Close() error { return s.conn.Close() }

// Run executes a plan on the daemon and streams results with
// Session.Run's contract: exactly plan.Len() results on a channel
// buffered to the plan size, per-scenario error isolation, OnResult
// progress in completion order. A transport failure mid-stream delivers
// the connection error as each unfinished scenario's Result.Err;
// cancelling ctx cancels the remote plan and does the same.
func (s *RemoteSession) Run(ctx context.Context, plan Plan, opts ...RunOption) <-chan Result {
	var ro runOptions
	for _, o := range opts {
		o(&ro)
	}
	out := make(chan Result, plan.Len())
	if plan.Len() == 0 {
		close(out)
		return out
	}
	scenarios := plan.scenarios
	go func() {
		defer close(out)
		total := len(scenarios)
		delivered := make([]bool, total)
		completed := 0
		deliver := func(res Result) {
			delivered[res.Index] = true
			completed++
			if ro.onResult != nil {
				ro.onResult(res, completed, total)
			}
			out <- res
		}

		payload, err := json.Marshal(scenarios)
		if err == nil {
			err = s.conn.Stream(ctx, wire.Request{Op: wire.OpPlan, Scenarios: payload},
				func(f wire.Response) error {
					if f.Index < 0 || f.Index >= total || delivered[f.Index] {
						return fmt.Errorf("resizecache: remote plan stream: unexpected result index %d", f.Index)
					}
					res := Result{Index: f.Index, Scenario: scenarios[f.Index]}
					switch {
					case f.Err != "":
						res.Err = &RemoteError{Msg: f.Err}
					default:
						if uerr := json.Unmarshal(f.Outcome, &res.Outcome); uerr != nil {
							res.Err = fmt.Errorf("resizecache: decode remote outcome: %w", uerr)
						}
					}
					deliver(res)
					return nil
				})
		}
		if completed == total {
			return
		}
		// The stream ended before every scenario reported: attribute the
		// stream-level failure to each unfinished scenario, preserving
		// the exactly-plan.Len()-results contract.
		if err == nil {
			err = fmt.Errorf("resizecache: remote plan stream ended early (%d of %d results)", completed, total)
		}
		for i := range scenarios {
			if !delivered[i] {
				deliver(Result{Index: i, Scenario: scenarios[i], Err: err})
			}
		}
	}()
	return out
}

// Simulate runs one scenario on the daemon.
func (s *RemoteSession) Simulate(sc Scenario) (Outcome, error) {
	return s.SimulateContext(context.Background(), sc)
}

// SimulateContext is Simulate with cancellation: it submits the
// scenario as a one-element plan, so identical concurrent submissions —
// from this client or any other — deduplicate on the daemon.
func (s *RemoteSession) SimulateContext(ctx context.Context, sc Scenario) (Outcome, error) {
	plan, err := PlanOf(sc)
	if err != nil {
		return Outcome{}, err
	}
	res := <-s.Run(ctx, plan)
	return res.Outcome, res.Err
}

// Artifact mirrors Session.Artifact against the daemon's store: a
// payload cached under the plan's fingerprint is returned without
// touching the plan's sweeps; a miss runs compute locally and records
// the payload for every other client. Lookup failures degrade to
// misses; a compute result that is not valid JSON is returned but not
// recorded (the store contract).
func (s *RemoteSession) Artifact(ctx context.Context, domain string, version int, plan Plan, compute func(context.Context) ([]byte, error)) ([]byte, error) {
	key := planArtifactKey(domain, version, plan).String()
	resp, err := s.conn.Call(ctx, wire.Request{Op: wire.OpLookupArtifact, Key: key})
	if err == nil && resp.Found {
		return append([]byte(nil), resp.Value...), nil
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	data, err := compute(ctx)
	if err != nil {
		return nil, err
	}
	if json.Valid(data) {
		// Best-effort: a record failure costs the next client a
		// recompute, never correctness.
		s.conn.Call(ctx, wire.Request{Op: wire.OpRecordArtifact, Key: key, Value: data})
	}
	return data, nil
}

// PutArtifact force-installs a payload under Artifact's fingerprint on
// the daemon (best-effort, like every store record).
func (s *RemoteSession) PutArtifact(domain string, version int, plan Plan, payload []byte) {
	if !json.Valid(payload) {
		return
	}
	s.conn.Call(context.Background(), wire.Request{
		Op: wire.OpRecordArtifact, Key: planArtifactKey(domain, version, plan).String(), Value: payload})
}

// Stats returns the daemon's cumulative scheduling counters — the
// shared runner's view across every client. A transport failure returns
// the zero Stats.
func (s *RemoteSession) Stats() runner.Stats {
	resp, err := s.conn.Call(context.Background(), wire.Request{Op: wire.OpStats})
	if err != nil {
		return runner.Stats{}
	}
	var st runner.Stats
	if json.Unmarshal(resp.Value, &st) != nil {
		return runner.Stats{}
	}
	return st
}

// Flush asks the daemon to persist its backing store.
func (s *RemoteSession) Flush() error {
	if _, err := s.conn.Call(context.Background(), wire.Request{Op: wire.OpFlush}); err != nil {
		return fmt.Errorf("resizecache: remote flush: %w", err)
	}
	return nil
}
