package resizecache

// The remote execution surface: Dial connects to a long-lived simd
// daemon (cmd/simd, internal/simd) and returns a RemoteSession that
// satisfies the same Executor surface as an in-process Session. Plans
// serialize to the daemon, which partitions them across its worker
// shards through the shared runner — so gang coalescing, in-flight
// dedup, and memoization work across every connected client — and
// streams per-scenario results back with the same error-isolation and
// completed-of-total progress semantics Session.Run gives locally.

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"resizecache/internal/runner"
	simdclient "resizecache/internal/simd/client"
	"resizecache/internal/simd/wire"
)

// RemoteError is a failure reported by the daemon — either a scenario's
// isolated simulation error replayed over the wire, or a request-level
// rejection.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "resizecache: remote: " + e.Msg }

// RemoteSession executes scenarios on a simd daemon. It is an Executor:
// Run, Simulate, and Artifact behave like Session's, except that
// simulations run in the daemon's worker pool and memoize against every
// other client's work. Safe for concurrent use; one connection
// multiplexes concurrent plans. Close when done.
//
// The session is fault tolerant: the underlying client reconnects with
// capped exponential backoff (failing over across a comma-separated
// address list), synchronous calls are bounded by a default timeout and
// retried across reconnects, and Run resubmits the undelivered remainder
// of a plan when the transport fails mid-stream — delivered results are
// never re-requested or duplicated, and the daemon's memo table makes a
// resubmission of already-finished work a warm replay. DialOptions
// tunes the retry budget and adds an optional local-fallback session.
type RemoteSession struct {
	conn     *simdclient.Conn
	attempts int
	fallback *Session
}

var _ Executor = (*RemoteSession)(nil)

// DefaultPlanAttempts is how many times Run submits a plan (first
// submission plus resubmissions after mid-stream transport failures)
// before degrading or failing.
const DefaultPlanAttempts = 3

// DialOptions tunes DialWith. The zero value gives the defaults a
// plain Dial uses.
type DialOptions struct {
	// CallTimeout bounds each synchronous round trip — Stats, Flush,
	// artifact lookups — whose context carries no deadline of its own
	// (0 = simdclient.DefaultCallTimeout; negative = no bound).
	CallTimeout time.Duration
	// PlanAttempts is Run's submission budget per plan: the first
	// submission plus reconnect-and-resubmit retries after transport
	// failures (0 = DefaultPlanAttempts; negative or 1 = no retry).
	PlanAttempts int
	// BackoffBase / BackoffMax shape the capped exponential backoff
	// between reconnect attempts (0 = the simdclient defaults).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// LocalFallback, when set, is the graceful-degradation path:
	// scenarios still undelivered after every plan attempt run on this
	// in-process session instead of failing. The run completes with
	// correct results at local speed — losing the fabric's sharing, not
	// the answer. The caller keeps ownership of the session.
	LocalFallback *Session
}

// Dial connects to a simd daemon with default fault tolerance. Address
// forms: "unix:<path>", "tcp:<host:port>", a bare path containing a
// path separator (unix), or a bare host:port (tcp). A comma-separated
// list of addresses ("tcp:10.0.0.1:9821,tcp:10.0.0.2:9821") dials the
// first reachable daemon and fails over round-robin when a connection
// dies.
func Dial(addr string) (*RemoteSession, error) {
	return DialWith(addr, DialOptions{})
}

// DialWith is Dial with explicit fault-tolerance tuning.
func DialWith(addr string, opts DialOptions) (*RemoteSession, error) {
	conn, err := simdclient.DialWith(addr, simdclient.Options{
		CallTimeout: opts.CallTimeout,
		BackoffBase: opts.BackoffBase,
		BackoffMax:  opts.BackoffMax,
	})
	if err != nil {
		return nil, fmt.Errorf("resizecache: dial %s: %w", addr, err)
	}
	attempts := opts.PlanAttempts
	if attempts == 0 {
		attempts = DefaultPlanAttempts
	}
	if attempts < 1 {
		attempts = 1
	}
	return &RemoteSession{conn: conn, attempts: attempts, fallback: opts.LocalFallback}, nil
}

// Close tears down the daemon connection; in-flight plans terminate
// with transport errors.
func (s *RemoteSession) Close() error { return s.conn.Close() }

// Run executes a plan on the daemon and streams results with
// Session.Run's contract: exactly plan.Len() results on a channel
// buffered to the plan size, per-scenario error isolation, OnResult
// progress in completion order.
//
// Plans are resumable: when the transport fails mid-stream, Run
// reconnects (with the client's backoff and failover policy) and
// resubmits only the scenarios whose results it has not yet received —
// each scenario's result is delivered exactly once, and scenarios the
// daemon already finished replay from its memo table instead of
// re-simulating. After PlanAttempts submissions the session degrades to
// the LocalFallback session if one was configured; otherwise the final
// transport error is delivered as each unfinished scenario's
// Result.Err. Cancelling ctx cancels the remote plan and attributes
// ctx's error the same way.
func (s *RemoteSession) Run(ctx context.Context, plan Plan, opts ...RunOption) <-chan Result {
	var ro runOptions
	for _, o := range opts {
		o(&ro)
	}
	out := make(chan Result, plan.Len())
	if plan.Len() == 0 {
		close(out)
		return out
	}
	scenarios := plan.scenarios
	go func() {
		defer close(out)
		total := len(scenarios)
		delivered := make([]bool, total)
		completed := 0
		deliver := func(res Result) {
			delivered[res.Index] = true
			completed++
			if ro.onResult != nil {
				ro.onResult(res, completed, total)
			}
			out <- res
		}
		// remaining lists the original indices of undelivered scenarios:
		// the submission set of the next attempt, in plan order.
		remaining := func() []int {
			idx := make([]int, 0, total-completed)
			for i, done := range delivered {
				if !done {
					idx = append(idx, i)
				}
			}
			return idx
		}

		var err error
		for attempt := 0; attempt < s.attempts && completed < total; attempt++ {
			idx := remaining()
			sub := make([]Scenario, len(idx))
			for i, orig := range idx {
				sub[i] = scenarios[orig]
			}
			var payload []byte
			if payload, err = json.Marshal(sub); err != nil {
				break
			}
			err = s.conn.Stream(ctx, wire.Request{Op: wire.OpPlan, Scenarios: payload},
				func(f wire.Response) error {
					// The frame's index is into this attempt's submission;
					// map it back to the original plan position.
					if f.Index < 0 || f.Index >= len(idx) || delivered[idx[f.Index]] {
						return fmt.Errorf("resizecache: remote plan stream: unexpected result index %d", f.Index)
					}
					orig := idx[f.Index]
					res := Result{Index: orig, Scenario: scenarios[orig]}
					switch {
					case f.Err != "":
						res.Err = &RemoteError{Msg: f.Err}
					default:
						if uerr := json.Unmarshal(f.Outcome, &res.Outcome); uerr != nil {
							res.Err = fmt.Errorf("resizecache: decode remote outcome: %w", uerr)
						}
					}
					deliver(res)
					return nil
				})
			if err == nil && completed < total {
				err = fmt.Errorf("resizecache: remote plan stream ended early (%d of %d results)", completed, total)
			}
			if err == nil || !simdclient.IsTransport(err) {
				// Done, cancelled, or remotely rejected: resubmission
				// cannot change the answer.
				break
			}
		}
		if completed == total {
			return
		}
		// Graceful degradation: run what the fabric never answered on the
		// local fallback session, preserving result correctness at local
		// speed. Skipped when ctx is the reason the stream ended.
		if s.fallback != nil && ctx.Err() == nil {
			idx := remaining()
			sub := make([]Scenario, len(idx))
			for i, orig := range idx {
				sub[i] = scenarios[orig]
			}
			if subPlan, perr := PlanOf(sub...); perr == nil {
				for res := range s.fallback.Run(ctx, subPlan) {
					orig := idx[res.Index]
					deliver(Result{Index: orig, Scenario: scenarios[orig], Outcome: res.Outcome, Err: res.Err})
				}
			}
			if completed == total {
				return
			}
		}
		// Attribute the stream-level failure to each unfinished scenario,
		// preserving the exactly-plan.Len()-results contract.
		if err == nil {
			err = fmt.Errorf("resizecache: remote plan stream ended early (%d of %d results)", completed, total)
		}
		for i := range scenarios {
			if !delivered[i] {
				deliver(Result{Index: i, Scenario: scenarios[i], Err: err})
			}
		}
	}()
	return out
}

// Simulate runs one scenario on the daemon.
func (s *RemoteSession) Simulate(sc Scenario) (Outcome, error) {
	return s.SimulateContext(context.Background(), sc)
}

// SimulateContext is Simulate with cancellation: it submits the
// scenario as a one-element plan, so identical concurrent submissions —
// from this client or any other — deduplicate on the daemon.
func (s *RemoteSession) SimulateContext(ctx context.Context, sc Scenario) (Outcome, error) {
	plan, err := PlanOf(sc)
	if err != nil {
		return Outcome{}, err
	}
	res := <-s.Run(ctx, plan)
	return res.Outcome, res.Err
}

// Artifact mirrors Session.Artifact against the daemon's store: a
// payload cached under the plan's fingerprint is returned without
// touching the plan's sweeps; a miss runs compute locally and records
// the payload for every other client. Lookup failures degrade to
// misses; a compute result that is not valid JSON is returned but not
// recorded (the store contract).
func (s *RemoteSession) Artifact(ctx context.Context, domain string, version int, plan Plan, compute func(context.Context) ([]byte, error)) ([]byte, error) {
	key := planArtifactKey(domain, version, plan).String()
	resp, err := s.conn.Call(ctx, wire.Request{Op: wire.OpLookupArtifact, Key: key})
	if err == nil && resp.Found {
		return append([]byte(nil), resp.Value...), nil
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	data, err := compute(ctx)
	if err != nil {
		return nil, err
	}
	if json.Valid(data) {
		// Best-effort: a record failure costs the next client a
		// recompute, never correctness.
		s.conn.Call(ctx, wire.Request{Op: wire.OpRecordArtifact, Key: key, Value: data})
	}
	return data, nil
}

// PutArtifact force-installs a payload under Artifact's fingerprint on
// the daemon (best-effort, like every store record).
func (s *RemoteSession) PutArtifact(domain string, version int, plan Plan, payload []byte) {
	if !json.Valid(payload) {
		return
	}
	s.conn.Call(context.Background(), wire.Request{
		Op: wire.OpRecordArtifact, Key: planArtifactKey(domain, version, plan).String(), Value: payload})
}

// Stats returns the daemon's cumulative scheduling counters — the
// shared runner's view across every client. The round trip is bounded
// by the client's call timeout (DialOptions.CallTimeout, default
// simdclient.DefaultCallTimeout), so a wedged daemon costs a bounded
// wait; any failure returns the zero Stats.
func (s *RemoteSession) Stats() runner.Stats {
	resp, err := s.conn.Call(context.Background(), wire.Request{Op: wire.OpStats})
	if err != nil {
		return runner.Stats{}
	}
	var st runner.Stats
	if json.Unmarshal(resp.Value, &st) != nil {
		return runner.Stats{}
	}
	return st
}

// Flush asks the daemon to persist its backing store. Like Stats, the
// round trip is bounded by the client's call timeout, so a wedged
// daemon fails the flush within a bounded wait instead of hanging it.
func (s *RemoteSession) Flush() error {
	if _, err := s.conn.Call(context.Background(), wire.Request{Op: wire.OpFlush}); err != nil {
		return fmt.Errorf("resizecache: remote flush: %w", err)
	}
	return nil
}
